// Quickstart: generate a small brain-tissue dataset, index it, walk a
// guided spatial query sequence with SCOUT prefetching, and compare against
// running the same sequence with no prefetching at all.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"scout/internal/core"
	"scout/internal/dataset"
	"scout/internal/engine"
	"scout/internal/pagestore"
	"scout/internal/prefetch"
	"scout/internal/rtree"
	"scout/internal/workload"
)

func main() {
	// 1. Generate a synthetic neuroscience dataset: somas with bifurcating
	// branches of small cylinders (a scaled-down stand-in for the paper's
	// 450M-cylinder Blue Brain model).
	cfg := dataset.SmallNeuroConfig()
	ds := dataset.GenerateNeuro(cfg)
	fmt.Println(ds.Stats())

	// 2. Store the objects in 4 KB pages and bulk-load an STR R-tree; the
	// STR order doubles as the physical page layout.
	store := pagestore.NewStore(ds.Objects)
	tree, err := rtree.BulkLoad(store, rtree.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed: %d pages, R-tree height %d\n\n", store.NumPages(), tree.Height())

	// 3. Build a guided spatial query sequence: 25 adjacent 80,000 µm³ range
	// queries following one neuron branch, with a prefetch window ratio of
	// 1 (analysis takes as long as a cold read).
	params := workload.Params{Queries: 25, Volume: 80_000, WindowRatio: 1}
	seqs, err := workload.GenerateMany(ds, params, 1, 42)
	if err != nil {
		log.Fatal(err)
	}
	seq := seqs[0]
	fmt.Printf("walking structure %d with %d queries of %.0fk µm³\n\n",
		seq.StructID, len(seq.Queries), params.Volume/1000)

	// 4. Execute the sequence twice on the virtual-clock engine: once
	// without prefetching, once with SCOUT.
	eng := engine.New(store, tree, engine.DefaultConfig())

	baseline := eng.RunSequence(seq, prefetch.None{})
	scout := eng.RunSequence(seq, core.New(store, ds.Adjacency, core.DefaultConfig()))

	fmt.Printf("%-16s %-10s %-12s %s\n", "prefetcher", "hit rate", "residual I/O", "speedup")
	fmt.Printf("%-16s %-10s %-12s %.2fx\n", "none",
		fmt.Sprintf("%.1f%%", 100*baseline.HitRate()), baseline.Residual.Round(1000), baseline.Speedup())
	fmt.Printf("%-16s %-10s %-12s %.2fx\n", "SCOUT",
		fmt.Sprintf("%.1f%%", 100*scout.HitRate()), scout.Residual.Round(1000), scout.Speedup())
}
