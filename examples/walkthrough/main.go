// Walkthrough visualization: the paper's frustum-culling use case (§3.1,
// §7.2.3), including the gapped variant used to create the illusion of
// high-speed movement. A camera flies along a neuron branch; every frame is
// a view-frustum query; SCOUT (and SCOUT-OPT when the flight has gaps)
// prefetches the next frame's data while the renderer draws the current one.
//
//	go run ./examples/walkthrough
package main

import (
	"fmt"
	"log"

	"scout/internal/core"
	"scout/internal/dataset"
	"scout/internal/engine"
	"scout/internal/flatindex"
	"scout/internal/pagestore"
	"scout/internal/prefetch"
	"scout/internal/rtree"
	"scout/internal/workload"
)

func main() {
	ds := dataset.GenerateNeuro(dataset.SmallNeuroConfig())
	store := pagestore.NewStore(ds.Objects)
	idxCfg := rtree.Config{}
	tree, err := rtree.BulkLoad(store, idxCfg)
	if err != nil {
		log.Fatal(err)
	}
	flat, err := flatindex.Build(store, idxCfg, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(ds.Stats())

	eng := engine.New(store, tree, engine.DefaultConfig())

	// Smooth flight: 65 frustum queries of 30,000 µm³, ray-tracing quality
	// (r = 1.6) — the paper's "Visualization (High Quality)" benchmark.
	smooth := workload.Params{
		Queries: 65, Volume: 30_000,
		Shape: workload.FrustumShape, WindowRatio: 1.6,
	}
	// Fast flight: same, but frames rendered 25 µm apart (gaps).
	fast := smooth
	fast.Gap = 25
	fast.WindowRatio = 1.2

	fmt.Println("\nsmooth walkthrough (adjacent frusta):")
	compare(eng, ds, store, flat, smooth)

	fmt.Println("\nfast walkthrough (25 µm gaps between frames):")
	compare(eng, ds, store, flat, fast)
}

func compare(eng *engine.Engine, ds *dataset.Dataset, store *pagestore.Store, flat *flatindex.Index, params workload.Params) {
	seqs, err := workload.GenerateMany(ds, params, 3, 23)
	if err != nil {
		log.Fatal(err)
	}
	for _, pf := range []prefetch.Prefetcher{
		prefetch.NewStraightLine(params.Volume),
		core.New(store, ds.Adjacency, core.DefaultConfig()),
		core.NewOpt(flat, ds.Adjacency, core.DefaultConfig()),
	} {
		agg := eng.RunAll(seqs, pf)
		fmt.Printf("  %-14s hit rate %5.1f%%   speedup %.2fx\n",
			pf.Name(), 100*agg.HitRate(), agg.Speedup())
	}
}
