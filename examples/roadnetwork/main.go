// Road network: the paper's non-scientific use case (§8.4) — a mobile
// device fetching map data around a driven route. There is no long analysis
// between queries, only the driver's decision time, and the device's
// prefetch cache is small, so accurate prefetching matters more than raw
// window length.
//
//	go run ./examples/roadnetwork
package main

import (
	"fmt"
	"log"

	"scout/internal/core"
	"scout/internal/dataset"
	"scout/internal/engine"
	"scout/internal/pagestore"
	"scout/internal/prefetch"
	"scout/internal/rtree"
	"scout/internal/workload"
)

func main() {
	ds := dataset.GenerateRoad(dataset.SmallRoadConfig())
	store := pagestore.NewStore(ds.Objects)
	tree, err := rtree.BulkLoad(store, rtree.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(ds.Stats())

	// Queries sized like Figure 17(b): 5×10⁻⁴ of the dataset volume, 25 per
	// route, with a window ratio of 1 (the driver decides where to go).
	volume := ds.Volume() * 5e-4
	params := workload.Params{Queries: 25, Volume: volume, WindowRatio: 1}
	seqs, err := workload.GenerateMany(ds, params, 5, 31)
	if err != nil {
		log.Fatal(err)
	}

	// A mobile device: tiny prefetch cache (2% of the dataset's pages).
	cfg := engine.DefaultConfig()
	cfg.CacheFraction = 0.02
	eng := engine.New(store, tree, cfg)
	fmt.Printf("mobile prefetch cache: %d pages of %d total\n\n",
		eng.Cache().Capacity(), store.NumPages())

	for _, pf := range []prefetch.Prefetcher{
		prefetch.None{},
		prefetch.NewEWMA(0.3, volume),
		prefetch.NewStraightLine(volume),
		prefetch.NewHilbert(ds.World, volume, 4),
		core.New(store, ds.Adjacency, core.DefaultConfig()),
	} {
		agg := eng.RunAll(seqs, pf)
		fmt.Printf("%-16s hit rate %5.1f%%   speedup %.2fx\n",
			pf.Name(), 100*agg.HitRate(), agg.Speedup())
	}
	fmt.Println("\n(SCOUT follows the driven road through the query results; position-based")
	fmt.Println(" extrapolation overshoots at turns and junctions)")
}
