// Model building: the synapse-placement use case of the paper (§3.1). A
// neuroscientist follows a neuron branch with small range queries and, at
// every step, computes exact distances between the branch's cylinders and
// all other cylinders in the region, recording the locations where the
// proximity falls below a threshold (candidate synapses). Distance
// computation is expensive, so the prefetch window is long (r = 2) and
// SCOUT can hide almost all of the I/O.
//
//	go run ./examples/modelbuilding
package main

import (
	"fmt"
	"log"

	"scout/internal/core"
	"scout/internal/dataset"
	"scout/internal/engine"
	"scout/internal/geom"
	"scout/internal/pagestore"
	"scout/internal/rtree"
	"scout/internal/workload"
)

// synapseThreshold is the proximity below which two branches can form a
// synapse, in µm.
const synapseThreshold = 0.5

func main() {
	ds := dataset.GenerateNeuro(dataset.SmallNeuroConfig())
	store := pagestore.NewStore(ds.Objects)
	tree, err := rtree.BulkLoad(store, rtree.Config{})
	if err != nil {
		log.Fatal(err)
	}

	// The paper's model-building microbenchmark: 35 queries of 20,000 µm³
	// with a window ratio of 2 (Figure 10).
	params := workload.Params{Queries: 35, Volume: 20_000, WindowRatio: 2}
	seqs, err := workload.GenerateMany(ds, params, 1, 11)
	if err != nil {
		log.Fatal(err)
	}
	seq := seqs[0]

	eng := engine.New(store, tree, engine.DefaultConfig())
	scout := core.New(store, ds.Adjacency, core.DefaultConfig())

	// Run the sequence through the engine for the I/O accounting, then redo
	// the analysis pass (the u part of r = u/d) for the domain result:
	// synapse candidates along the followed branch.
	res := eng.RunSequence(seq, scout)

	totalCandidates := 0
	for _, q := range seq.Queries {
		region := q.Region.(geom.AABB)
		ids := tree.QueryObjects(region, nil)

		// Split the result into the followed branch (objects nearest the
		// walk line) and everything else, then count close approaches.
		var branch, others []pagestore.Object
		for _, id := range ids {
			o := store.Object(id)
			if o.Seg.DistToPoint(q.Center) < 4 {
				branch = append(branch, o)
			} else {
				others = append(others, o)
			}
		}
		for _, b := range branch {
			bc := geom.Cyl(b.Seg.A, b.Seg.B, b.Radius, b.Radius)
			for _, o := range others {
				oc := geom.Cyl(o.Seg.A, o.Seg.B, o.Radius, o.Radius)
				if bc.DistToCylinder(oc) < synapseThreshold {
					totalCandidates++
				}
			}
		}
	}

	fmt.Println(ds.Stats())
	fmt.Printf("\nfollowed structure %d for %d queries\n", seq.StructID, len(seq.Queries))
	fmt.Printf("synapse candidates (proximity < %.1f µm): %d\n\n", synapseThreshold, totalCandidates)
	fmt.Printf("SCOUT cache hit rate: %.1f%%   speedup vs no prefetching: %.2fx\n",
		100*res.HitRate(), res.Speedup())
	fmt.Println("(the r=2 window lets SCOUT hide nearly all I/O behind the distance computations)")
}
