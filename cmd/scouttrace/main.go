// Command scouttrace replays one guided spatial query sequence with a
// chosen prefetcher and prints a per-query trace: pages needed, cache hits,
// residual I/O, window utilization and SCOUT's internals. It is the
// debugging lens for prefetcher behaviour.
//
// Usage:
//
//	scouttrace -prefetcher scout -queries 25 -volume 80000
//	scouttrace -prefetcher ewma -gap 25
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"scout/internal/core"
	"scout/internal/dataset"
	"scout/internal/engine"
	"scout/internal/experiments"
	"scout/internal/prefetch"
	"scout/internal/workload"
)

func main() {
	var (
		pfName  = flag.String("prefetcher", "scout", "none | straightline | ewma | hilbert | scout | scoutopt")
		queries = flag.Int("queries", 25, "sequence length")
		volume  = flag.Float64("volume", 80_000, "query volume in µm³")
		gap     = flag.Float64("gap", 0, "gap distance in µm")
		ratio   = flag.Float64("ratio", 1, "prefetch window ratio r = u/d")
		objects = flag.Int("objects", 200_000, "neuro dataset object count")
		seed    = flag.Int64("seed", 7, "workload seed")
	)
	flag.Parse()

	cfg := dataset.DefaultNeuroConfig()
	cfg.NumObjects = *objects
	ds := dataset.GenerateNeuro(cfg)
	setup, err := experiments.BuildSetup(ds)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println(ds.Stats())

	p := workload.Params{Queries: *queries, Volume: *volume, Gap: *gap, WindowRatio: *ratio}
	seqs, err := workload.GenerateMany(ds, p, 1, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	seq := seqs[0]

	var pf prefetch.Prefetcher
	var stats *core.Scout
	switch *pfName {
	case "none":
		pf = prefetch.None{}
	case "straightline":
		pf = prefetch.NewStraightLine(*volume)
	case "ewma":
		pf = prefetch.NewEWMA(0.3, *volume)
	case "hilbert":
		pf = prefetch.NewHilbert(ds.World, *volume, 4)
	case "scout":
		s := core.New(setup.Store, ds.Adjacency, core.DefaultConfig())
		pf, stats = s, s
	case "scoutopt":
		s := core.NewOpt(setup.Flat, ds.Adjacency, core.DefaultConfig())
		pf, stats = s, &s.Scout
	default:
		fmt.Fprintf(os.Stderr, "unknown prefetcher %q\n", *pfName)
		os.Exit(2)
	}

	// Wrap the engine loop manually so SCOUT internals can be printed after
	// each query.
	e := engine.New(setup.Store, setup.Tree, engine.DefaultConfig())
	fmt.Printf("replaying %d queries on structure %d with %s (r=%.1f, gap=%.0f)\n\n",
		len(seq.Queries), seq.StructID, pf.Name(), *ratio, *gap)

	res := e.RunSequence(seq, pf)
	for _, q := range res.Queries {
		fmt.Printf("q%-3d pages=%-4d hits=%-4d residual=%-10v window=%-10v prefetched=%-4d",
			q.Seq, q.ResultPages, q.HitPages,
			q.Residual.Round(time.Microsecond), q.Window.Round(time.Microsecond), q.Prefetched)
		if stats != nil && q.Seq == len(res.Queries)-1 {
			st := stats.LastStats()
			fmt.Printf(" | graph: %dv/%de cand=%d exits=%d",
				st.Vertices, st.Edges, st.Candidates, st.Exits)
		}
		fmt.Println()
	}
	fmt.Printf("\nsequence hit rate: %s   speedup vs no prefetching: %.2fx\n",
		fmt.Sprintf("%.1f%%", 100*res.HitRate()), res.Speedup())
}
