// Command benchdiff compares a fresh scoutbench -benchjson run against the
// committed BENCH_hotpath.json baseline and fails (exit 1) when any
// experiment regressed in wall-clock — or in simulated Seeks (layout1) or
// open-loop p999 (load1), for experiments that record them — beyond the
// tolerance. CI runs it so the perf trajectory is enforced, not just
// recorded. Seek counts and load1's p999 come off the virtual clock and are
// deterministic, so those gates have no noise floor.
//
// Wall-clock comparisons across different machines are inherently noisy; the
// default tolerance (25%) absorbs typical CI-runner variance, and
// -max-regress (or the BENCH_TOLERANCE environment variable) widens it for
// noisier fleets. Experiments present in only one file are reported but
// never fail the diff, and experiments under -min-wall milliseconds in both
// files (scheduler-noise territory) are reported but never fail either.
//
// Usage:
//
//	scoutbench -exp fig3,fig13a -scale 0.05 -seqs 4 -benchjson BENCH_fresh.json
//	benchdiff -baseline BENCH_hotpath.json -fresh BENCH_fresh.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"

	"scout/internal/benchfmt"
)

func load(path string) (benchfmt.File, error) {
	var bf benchfmt.File
	data, err := os.ReadFile(path)
	if err != nil {
		return bf, err
	}
	if err := json.Unmarshal(data, &bf); err != nil {
		return bf, fmt.Errorf("%s: %w", path, err)
	}
	return bf, nil
}

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_hotpath.json", "committed baseline JSON")
		freshPath    = flag.String("fresh", "BENCH_fresh.json", "freshly generated JSON to compare")
		maxRegress   = flag.Float64("max-regress", 0.25, "max per-experiment wall-clock regression (0.25 = +25%)")
		minWall      = flag.Float64("min-wall", 25, "ignore regressions when both baseline and fresh are under this many ms (noise-dominated)")
	)
	flag.Parse()

	if env := os.Getenv("BENCH_TOLERANCE"); env != "" {
		v, err := strconv.ParseFloat(env, 64)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff: bad BENCH_TOLERANCE:", err)
			os.Exit(2)
		}
		*maxRegress = v
	}

	base, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	fresh, err := load(*freshPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	if base.Scale != fresh.Scale || base.Sequences != fresh.Sequences || base.Seed != fresh.Seed {
		fmt.Fprintf(os.Stderr, "benchdiff: configuration mismatch (scale %v vs %v, seqs %d vs %d, seed %d vs %d) — comparison void\n",
			base.Scale, fresh.Scale, base.Sequences, fresh.Sequences, base.Seed, fresh.Seed)
		os.Exit(2)
	}
	if base.Sessions != fresh.Sessions || base.SessionPolicy != fresh.SessionPolicy {
		fmt.Fprintf(os.Stderr, "benchdiff: multi-session configuration mismatch (sessions %d vs %d, policy %q vs %q) — comparison void\n",
			base.Sessions, fresh.Sessions, base.SessionPolicy, fresh.SessionPolicy)
		os.Exit(2)
	}
	if base.Layout != fresh.Layout {
		fmt.Fprintf(os.Stderr, "benchdiff: layout mismatch (%q vs %q) — comparison void\n",
			base.Layout, fresh.Layout)
		os.Exit(2)
	}
	// Timings under different fault configurations measure different
	// physics — a heavy-fault run is slower by design, not by regression.
	if base.Faults != fresh.Faults || base.FaultSeed != fresh.FaultSeed || base.SLOMS != fresh.SLOMS {
		fmt.Fprintf(os.Stderr, "benchdiff: fault configuration mismatch (faults %q vs %q, faultseed %d vs %d, slo %vms vs %vms) — comparison void\n",
			base.Faults, fresh.Faults, base.FaultSeed, fresh.FaultSeed, base.SLOMS, fresh.SLOMS)
		os.Exit(2)
	}
	// A sim run and a file-backend run measure different physics (one is a
	// pure virtual clock, the other includes real disk I/O and checksum
	// work), as do two file runs under different integrity modes.
	if base.Backend != fresh.Backend || base.Checksum != fresh.Checksum {
		fmt.Fprintf(os.Stderr, "benchdiff: backend configuration mismatch (backend %q vs %q, checksum %q vs %q) — comparison void\n",
			base.Backend, fresh.Backend, base.Checksum, fresh.Checksum)
		os.Exit(2)
	}
	// Offered-load points under different arrival configurations are
	// different experiments: a bursty 8x sweep's tail says nothing about a
	// poisson 1x point. scoutbench normalizes the default spellings
	// ("poisson", "mixed") to empty before writing, so only a real
	// configuration change voids the comparison.
	if base.Arrivals != fresh.Arrivals || base.ArrivalRate != fresh.ArrivalRate ||
		base.Classes != fresh.Classes || base.PatienceMS != fresh.PatienceMS {
		fmt.Fprintf(os.Stderr, "benchdiff: arrival configuration mismatch (arrivals %q vs %q, rate %v vs %v, classes %q vs %q, patience %vms vs %vms) — comparison void\n",
			base.Arrivals, fresh.Arrivals, base.ArrivalRate, fresh.ArrivalRate,
			base.Classes, fresh.Classes, base.PatienceMS, fresh.PatienceMS)
		os.Exit(2)
	}
	// A pinned shard count changes shard1 from a 1..16 sweep to a single
	// column — different work entirely, so the comparison is void.
	if base.Shards != fresh.Shards {
		fmt.Fprintf(os.Stderr, "benchdiff: shard configuration mismatch (shards %d vs %d) — comparison void\n",
			base.Shards, fresh.Shards)
		os.Exit(2)
	}
	// A replicated fleet pays for replica sweeps, failover probes and hedged
	// duplicates an unreplicated one never issues, and a pinned mode
	// collapses ha1's three-mode sweep to one — either way the work differs,
	// so the comparison is void.
	if base.Replicas != fresh.Replicas || base.Hedge != fresh.Hedge {
		fmt.Fprintf(os.Stderr, "benchdiff: replication configuration mismatch (replicas %d vs %d, hedge %v vs %v) — comparison void\n",
			base.Replicas, fresh.Replicas, base.Hedge, fresh.Hedge)
		os.Exit(2)
	}
	// File-backend wall clocks include real I/O, which is far noisier across
	// CI runners than compute time — widen the noise floor. Seeks still come
	// off the virtual clock and keep their exact, floorless gate.
	if base.Backend == "file" {
		*minWall *= 4
	}

	byID := map[string]benchfmt.Record{}
	for _, r := range base.Experiments {
		byID[r.ID] = r
	}

	fmt.Printf("%-26s %12s %12s %9s\n", "experiment", "baseline ms", "fresh ms", "delta")
	failed := false
	for _, fr := range fresh.Experiments {
		br, ok := byID[fr.ID]
		if !ok {
			fmt.Printf("%-26s %12s %12.1f %9s\n", fr.ID, "-", fr.WallMS, "new")
			continue
		}
		delete(byID, fr.ID)
		delta := 0.0
		if br.WallMS > 0 {
			delta = fr.WallMS/br.WallMS - 1
		}
		marker := ""
		if delta > *maxRegress {
			// A percentage gate on a few milliseconds is pure scheduler
			// noise: only experiments that take real time can regress.
			if br.WallMS < *minWall && fr.WallMS < *minWall {
				marker = "  (ignored: below min-wall)"
			} else {
				marker = "  REGRESSION"
				failed = true
			}
		}
		// Seeks are simulated on the virtual clock — fully deterministic,
		// so the same tolerance applies with no noise floor: any experiment
		// recording seeks in the baseline must keep recording them (a
		// fresh run that silently drops the metric would otherwise disarm
		// the gate) and must not regress past the tolerance.
		if br.Seeks > 0 {
			if fr.Seeks == 0 {
				marker += fmt.Sprintf("  seeks %d -> MISSING", br.Seeks)
				failed = true
			} else {
				seekDelta := float64(fr.Seeks)/float64(br.Seeks) - 1
				marker += fmt.Sprintf("  seeks %d -> %d (%+.1f%%)", br.Seeks, fr.Seeks, seekDelta*100)
				if seekDelta > *maxRegress {
					marker += "  SEEK REGRESSION"
					failed = true
				}
			}
		}
		// p999 under load is also virtual-clock deterministic: same exact
		// gate as Seeks, including the must-keep-recording rule.
		if br.P999MS > 0 {
			if fr.P999MS == 0 {
				marker += fmt.Sprintf("  p999 %.2fms -> MISSING", br.P999MS)
				failed = true
			} else {
				pDelta := fr.P999MS/br.P999MS - 1
				marker += fmt.Sprintf("  p999 %.2fms -> %.2fms (%+.1f%%)", br.P999MS, fr.P999MS, pDelta*100)
				if pDelta > *maxRegress {
					marker += "  P999 REGRESSION"
					failed = true
				}
			}
		}
		fmt.Printf("%-26s %12.1f %12.1f %+8.1f%%%s\n", fr.ID, br.WallMS, fr.WallMS, delta*100, marker)
	}
	for id := range byID {
		fmt.Printf("%-26s %12.1f %12s %9s\n", id, byID[id].WallMS, "-", "missing")
	}

	if failed {
		fmt.Fprintf(os.Stderr, "benchdiff: wall-clock, Seeks or p999 regression beyond %.0f%% — investigate or refresh the baseline\n", *maxRegress*100)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: OK (tolerance %.0f%%)\n", *maxRegress*100)
}
