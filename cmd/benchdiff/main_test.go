package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"scout/internal/benchfmt"
)

// TestMain doubles as the benchdiff entry point when re-exec'd: the
// void-comparison and regression gates end in os.Exit, so the only way to
// test them is to run the real binary. The test binary re-invokes itself
// with BENCHDIFF_BE_MAIN=1, which routes straight into main().
func TestMain(m *testing.M) {
	if os.Getenv("BENCHDIFF_BE_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// writeBench marshals a benchfmt.File into dir and returns its path.
func writeBench(t *testing.T, dir, name string, f benchfmt.File) string {
	t.Helper()
	data, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// runBenchdiff re-execs the test binary as benchdiff against the two files.
func runBenchdiff(t *testing.T, baseline, fresh benchfmt.File) (output string, exitCode int) {
	t.Helper()
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0],
		"-baseline", writeBench(t, dir, "base.json", baseline),
		"-fresh", writeBench(t, dir, "fresh.json", fresh))
	cmd.Env = append(os.Environ(), "BENCHDIFF_BE_MAIN=1", "BENCH_TOLERANCE=")
	var buf strings.Builder
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	err := cmd.Run()
	if err == nil {
		return buf.String(), 0
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("benchdiff: %v", err)
	}
	return buf.String(), ee.ExitCode()
}

// bench returns a minimal comparable file with one load1 record.
func bench(p999 float64) benchfmt.File {
	return benchfmt.File{
		Scale: 0.05, Sequences: 4, Seed: 7,
		Experiments: []benchfmt.Record{{ID: "load1", WallMS: 100, P999MS: p999}},
	}
}

// TestArrivalConfigMismatchVoids: offered-load points measured under
// different arrival configurations are different experiments — any mismatch
// in process, rate, class mix or patience must void the comparison (exit 2)
// rather than report a bogus regression.
func TestArrivalConfigMismatchVoids(t *testing.T) {
	mutate := []struct {
		name string
		mod  func(*benchfmt.File)
	}{
		{"process", func(f *benchfmt.File) { f.Arrivals = "bursty" }},
		{"rate", func(f *benchfmt.File) { f.ArrivalRate = 4 }},
		{"classes", func(f *benchfmt.File) { f.Classes = "uniform" }},
		{"patience", func(f *benchfmt.File) { f.PatienceMS = 250 }},
	}
	for _, tc := range mutate {
		t.Run(tc.name, func(t *testing.T) {
			fresh := bench(50)
			tc.mod(&fresh)
			out, code := runBenchdiff(t, bench(50), fresh)
			if code != 2 {
				t.Fatalf("mismatched %s exited %d, want 2\n%s", tc.name, code, out)
			}
			if !strings.Contains(out, "arrival configuration mismatch") {
				t.Errorf("output missing the void reason:\n%s", out)
			}
		})
	}
}

// TestArrivalDefaultsComparable: a seed-era baseline with no arrival fields
// must stay comparable with a fresh default run — scoutbench normalizes the
// default spellings to empty, so both sides are zero-valued.
func TestArrivalDefaultsComparable(t *testing.T) {
	out, code := runBenchdiff(t, bench(50), bench(50))
	if code != 0 {
		t.Fatalf("default arrival configs voided the comparison (exit %d):\n%s", code, out)
	}
	if !strings.Contains(out, "benchdiff: OK") {
		t.Errorf("missing OK line:\n%s", out)
	}
}

// TestShardConfigMismatchVoids: a pinned shard count turns shard1 from a
// full sweep into a single column — comparing the two must be void (exit 2),
// and two runs pinned to the same count must stay comparable.
func TestShardConfigMismatchVoids(t *testing.T) {
	fresh := bench(50)
	fresh.Shards = 8
	out, code := runBenchdiff(t, bench(50), fresh)
	if code != 2 {
		t.Fatalf("mismatched shard counts exited %d, want 2\n%s", code, out)
	}
	if !strings.Contains(out, "shard configuration mismatch") {
		t.Errorf("output missing the void reason:\n%s", out)
	}

	base := bench(50)
	base.Shards = 8
	out, code = runBenchdiff(t, base, fresh)
	if code != 0 {
		t.Fatalf("matching pinned shard counts voided the comparison (exit %d):\n%s", code, out)
	}
}

// TestReplicationConfigMismatchVoids: a pinned replication degree or hedge
// threshold changes what ha1 measures — replica sweeps, failover probes and
// hedged duplicates are real work — so any mismatch voids the comparison
// (exit 2), while two runs pinned identically stay comparable.
func TestReplicationConfigMismatchVoids(t *testing.T) {
	mutate := []struct {
		name string
		mod  func(*benchfmt.File)
	}{
		{"replicas", func(f *benchfmt.File) { f.Replicas = 2 }},
		{"hedge", func(f *benchfmt.File) { f.Hedge = 1.5 }},
	}
	for _, tc := range mutate {
		t.Run(tc.name, func(t *testing.T) {
			fresh := bench(50)
			tc.mod(&fresh)
			out, code := runBenchdiff(t, bench(50), fresh)
			if code != 2 {
				t.Fatalf("mismatched %s exited %d, want 2\n%s", tc.name, code, out)
			}
			if !strings.Contains(out, "replication configuration mismatch") {
				t.Errorf("output missing the void reason:\n%s", out)
			}
		})
	}

	base, fresh := bench(50), bench(50)
	base.Replicas, base.Hedge = 2, 1.5
	fresh.Replicas, fresh.Hedge = 2, 1.5
	out, code := runBenchdiff(t, base, fresh)
	if code != 0 {
		t.Fatalf("matching replication pins voided the comparison (exit %d):\n%s", code, out)
	}
}

// TestP999Gate pins the deterministic p999 gate: regressions beyond the
// tolerance fail (exit 1), improvements and in-tolerance drift pass, and a
// fresh run that silently drops the metric fails — a disarmed gate is a
// regression too.
func TestP999Gate(t *testing.T) {
	cases := []struct {
		name       string
		base, new  float64
		wantCode   int
		wantOutput string
	}{
		{"regression", 50, 100, 1, "P999 REGRESSION"},
		{"improvement", 100, 50, 0, "benchdiff: OK"},
		{"within tolerance", 100, 110, 0, "benchdiff: OK"},
		{"metric dropped", 50, 0, 1, "MISSING"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, code := runBenchdiff(t, bench(tc.base), bench(tc.new))
			if code != tc.wantCode {
				t.Fatalf("exited %d, want %d\n%s", code, tc.wantCode, out)
			}
			if !strings.Contains(out, tc.wantOutput) {
				t.Errorf("output missing %q:\n%s", tc.wantOutput, out)
			}
		})
	}
}
