// Command scoutgen generates the synthetic datasets and prints their
// statistics: object counts, world volume, structure lengths, and index
// layout. Useful for inspecting the substitution datasets documented in
// DESIGN.md §2.
//
// Usage:
//
//	scoutgen -dataset neuro -objects 1000000
//	scoutgen -dataset all
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"scout/internal/dataset"
	"scout/internal/experiments"
)

func main() {
	var (
		which   = flag.String("dataset", "all", "neuro | artery | lung | road | all")
		objects = flag.Int("objects", 0, "override object count (0 = default)")
		seed    = flag.Int64("seed", 0, "override generation seed (0 = default)")
	)
	flag.Parse()

	gens := map[string]func() *dataset.Dataset{
		"neuro": func() *dataset.Dataset {
			cfg := dataset.DefaultNeuroConfig()
			if *objects > 0 {
				cfg.NumObjects = *objects
			}
			if *seed != 0 {
				cfg.Seed = *seed
			}
			return dataset.GenerateNeuro(cfg)
		},
		"artery": func() *dataset.Dataset {
			cfg := dataset.DefaultArteryConfig()
			if *objects > 0 {
				cfg.NumObjects = *objects
			}
			if *seed != 0 {
				cfg.Seed = *seed
			}
			return dataset.GenerateArtery(cfg)
		},
		"lung": func() *dataset.Dataset {
			cfg := dataset.DefaultLungConfig()
			if *objects > 0 {
				cfg.NumObjects = *objects
			}
			if *seed != 0 {
				cfg.Seed = *seed
			}
			return dataset.GenerateLung(cfg)
		},
		"road": func() *dataset.Dataset {
			cfg := dataset.DefaultRoadConfig()
			if *seed != 0 {
				cfg.Seed = *seed
			}
			return dataset.GenerateRoad(cfg)
		},
	}

	names := []string{"neuro", "artery", "lung", "road"}
	if *which != "all" {
		if _, ok := gens[*which]; !ok {
			fmt.Fprintf(os.Stderr, "unknown dataset %q (neuro|artery|lung|road|all)\n", *which)
			os.Exit(2)
		}
		names = []string{*which}
	}

	for _, name := range names {
		start := time.Now()
		ds := gens[name]()
		genTime := time.Since(start)

		start = time.Now()
		setup, err := experiments.BuildSetup(ds)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		indexTime := time.Since(start)

		fmt.Println(ds.Stats())
		fmt.Printf("  generated in %s, indexed in %s\n",
			genTime.Round(time.Millisecond), indexTime.Round(time.Millisecond))
		fmt.Printf("  pages: %d (%d objects/page, %.1f MB modeled on disk)\n",
			setup.Store.NumPages(), setup.Store.ObjectsPerPage(),
			float64(setup.Store.TotalBytes())/(1<<20))
		fmt.Printf("  R-tree height: %d\n\n", setup.Tree.Height())
	}
}
