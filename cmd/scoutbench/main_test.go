package main

import (
	"os"
	"os/exec"
	"strings"
	"testing"
)

// TestMain doubles as the scoutbench entry point when re-exec'd: usage
// errors happen inside main() (flag validation + os.Exit), so the only way
// to test them is to run the real binary. The test binary re-invokes
// itself with SCOUTBENCH_BE_MAIN=1, which routes straight into main().
func TestMain(m *testing.M) {
	if os.Getenv("SCOUTBENCH_BE_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// runScoutbench re-execs the test binary as scoutbench with the given args.
func runScoutbench(t *testing.T, args ...string) (stderr string, exitCode int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "SCOUTBENCH_BE_MAIN=1")
	var errBuf strings.Builder
	cmd.Stderr = &errBuf
	err := cmd.Run()
	if err == nil {
		return errBuf.String(), 0
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("scoutbench %v: %v", args, err)
	}
	return errBuf.String(), ee.ExitCode()
}

// TestUsageErrors pins the strict-flag contract: a typo in -faults, -policy
// or -layout (or a nonsense -slo / -exp) must exit non-zero with the valid
// options on stderr — never fall back silently to measuring the default
// configuration.
func TestUsageErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want []string // substrings that must appear on stderr
	}{
		{"unknown faults profile", []string{"-faults", "catastrophic"},
			[]string{"catastrophic", "-faults takes one of:", "off", "light", "moderate", "heavy"}},
		{"unknown policy", []string{"-policy", "roundrobin"},
			[]string{"roundrobin", "-policy takes one of:", "fair"}},
		{"unknown layout", []string{"-layout", "zorder"},
			[]string{"zorder", "-layout takes one of:", "hilbert", "str"}},
		{"negative slo", []string{"-slo", "-5ms"},
			[]string{"-slo", "non-negative"}},
		{"unknown experiment", []string{"-exp", "fig99z"},
			[]string{"fig99z", "-list"}},
		{"unknown backend", []string{"-backend", "nvme"},
			[]string{"nvme", "-backend takes one of:", "sim", "file"}},
		{"unknown checksum mode", []string{"-checksum", "parity"},
			[]string{"parity", "-checksum takes one of:", "off", "verify", "repair"}},
		{"unknown arrival process", []string{"-arrivals", "pareto"},
			[]string{"pareto", "-arrivals takes one of:", "poisson", "bursty"}},
		{"negative rate", []string{"-rate", "-2"},
			[]string{"-rate", "non-negative"}},
		{"unknown class mix", []string{"-classes", "vip"},
			[]string{"vip", "-classes takes one of:", "mixed", "uniform"}},
		{"negative patience", []string{"-patience", "-10ms"},
			[]string{"-patience", "non-negative"}},
		{"unknown shard count", []string{"-shards", "3"},
			[]string{"3", "-shards takes one of:", "1, 2, 4, 8, 16"}},
		{"negative shard count", []string{"-shards", "-2"},
			[]string{"-2", "-shards takes one of:"}},
		{"unknown replica count", []string{"-replicas", "5"},
			[]string{"5", "-replicas takes one of:", "1, 2, 3"}},
		{"negative replica count", []string{"-replicas", "-1"},
			[]string{"-1", "-replicas takes one of:"}},
		{"sub-1 hedge threshold", []string{"-hedge", "0.5"},
			[]string{"0.5", "-hedge takes 0 (default threshold) or a multiplier >= 1"}},
		{"negative hedge threshold", []string{"-hedge", "-2"},
			[]string{"-hedge takes 0 (default threshold) or a multiplier >= 1"}},
		{"mistyped shard profile", []string{"-faults", "shard:meltdown"},
			[]string{"shard:meltdown", "-faults takes one of:", "shard:brownout", "shard:outage", "shard:flaky"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			stderr, code := runScoutbench(t, tc.args...)
			if code == 0 {
				t.Fatalf("scoutbench %v exited 0\nstderr: %s", tc.args, stderr)
			}
			for _, want := range tc.want {
				if !strings.Contains(stderr, want) {
					t.Errorf("stderr missing %q:\n%s", want, stderr)
				}
			}
		})
	}
}

// TestValidFlagsPassValidation: the canonical spellings of every gated flag
// get past validation (-list exits 0 before any dataset builds, so this
// stays fast).
func TestValidFlagsPassValidation(t *testing.T) {
	stderr, code := runScoutbench(t,
		"-list", "-faults", "heavy", "-policy", "fair", "-layout", "hilbert", "-slo", "25ms",
		"-backend", "file", "-checksum", "repair",
		"-arrivals", "bursty", "-rate", "4", "-classes", "uniform", "-patience", "100ms",
		"-shards", "8", "-replicas", "2", "-hedge", "1.5")
	if code != 0 {
		t.Fatalf("valid flags rejected (exit %d):\n%s", code, stderr)
	}
}

// TestUnwritableBackendDir: pointing the file backend at a directory that
// cannot be created or written must be a clear usage error up front, not a
// panic from inside dataset setup.
func TestUnwritableBackendDir(t *testing.T) {
	if os.Geteuid() == 0 {
		t.Skip("running as root: directory permissions are not enforced")
	}
	dir := t.TempDir()
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o755)
	stderr, code := runScoutbench(t, "-list", "-backend", "file", "-backenddir", dir+"/sub")
	if code != 2 {
		t.Fatalf("unwritable -backenddir exited %d, want 2\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "-backenddir") || !strings.Contains(stderr, "writable") {
		t.Errorf("stderr missing a clear writability message:\n%s", stderr)
	}
}
