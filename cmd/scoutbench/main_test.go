package main

import (
	"os"
	"os/exec"
	"strings"
	"testing"
)

// TestMain doubles as the scoutbench entry point when re-exec'd: usage
// errors happen inside main() (flag validation + os.Exit), so the only way
// to test them is to run the real binary. The test binary re-invokes
// itself with SCOUTBENCH_BE_MAIN=1, which routes straight into main().
func TestMain(m *testing.M) {
	if os.Getenv("SCOUTBENCH_BE_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// runScoutbench re-execs the test binary as scoutbench with the given args.
func runScoutbench(t *testing.T, args ...string) (stderr string, exitCode int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "SCOUTBENCH_BE_MAIN=1")
	var errBuf strings.Builder
	cmd.Stderr = &errBuf
	err := cmd.Run()
	if err == nil {
		return errBuf.String(), 0
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("scoutbench %v: %v", args, err)
	}
	return errBuf.String(), ee.ExitCode()
}

// TestUsageErrors pins the strict-flag contract: a typo in -faults, -policy
// or -layout (or a nonsense -slo / -exp) must exit non-zero with the valid
// options on stderr — never fall back silently to measuring the default
// configuration.
func TestUsageErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want []string // substrings that must appear on stderr
	}{
		{"unknown faults profile", []string{"-faults", "catastrophic"},
			[]string{"catastrophic", "-faults takes one of:", "off", "light", "moderate", "heavy"}},
		{"unknown policy", []string{"-policy", "roundrobin"},
			[]string{"roundrobin", "-policy takes one of:", "fair"}},
		{"unknown layout", []string{"-layout", "zorder"},
			[]string{"zorder", "-layout takes one of:", "hilbert", "str"}},
		{"negative slo", []string{"-slo", "-5ms"},
			[]string{"-slo", "non-negative"}},
		{"unknown experiment", []string{"-exp", "fig99z"},
			[]string{"fig99z", "-list"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			stderr, code := runScoutbench(t, tc.args...)
			if code == 0 {
				t.Fatalf("scoutbench %v exited 0\nstderr: %s", tc.args, stderr)
			}
			for _, want := range tc.want {
				if !strings.Contains(stderr, want) {
					t.Errorf("stderr missing %q:\n%s", want, stderr)
				}
			}
		})
	}
}

// TestValidFlagsPassValidation: the canonical spellings of every gated flag
// get past validation (-list exits 0 before any dataset builds, so this
// stays fast).
func TestValidFlagsPassValidation(t *testing.T) {
	stderr, code := runScoutbench(t,
		"-list", "-faults", "heavy", "-policy", "fair", "-layout", "hilbert", "-slo", "25ms")
	if code != 0 {
		t.Fatalf("valid flags rejected (exit %d):\n%s", code, stderr)
	}
}
