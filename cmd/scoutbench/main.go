// Command scoutbench regenerates the paper's tables and figures. Each
// experiment prints the same rows or series the paper reports; DESIGN.md §4
// maps experiment IDs to figures and EXPERIMENTS.md records paper-vs-
// measured values.
//
// Sequences within each measurement are fanned out across -workers cores
// (results are byte-identical to a sequential run; see engine.RunEach).
// -compare additionally re-runs every experiment single-core and reports
// the wall-clock speedup; -benchjson writes the timings to a JSON file so
// the perf trajectory is tracked across commits (CI stores BENCH_hotpath.json).
//
// Usage:
//
//	scoutbench -list
//	scoutbench -exp fig11a            # one experiment at full scale
//	scoutbench -exp all -scale 0.25   # everything, quarter-scale datasets
//	scoutbench -exp fig13d -seqs 10   # fewer sequences for a quick look
//	scoutbench -exp mu2 -sessions 16  # 16 concurrent sessions, policy ablation
//	scoutbench -exp mu1 -policy none  # multi-session, unarbitrated baseline
//	scoutbench -exp fig3 -backend file   # durable checksummed page file
//	scoutbench -exp dur1 -checksum repair  # pin dur1's integrity-mode sweep
//	scoutbench -exp load1 -arrivals bursty -rate 4  # open-loop sweep, one load point
//	scoutbench -exp shard1 -shards 8  # sharded engine, one shard count
//	scoutbench -exp ha1 -replicas 2 -hedge 1.5 -faults shard:outage  # one HA cell
//	scoutbench -exp all -compare -benchjson BENCH_hotpath.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"scout/internal/benchfmt"
	"scout/internal/engine"
	"scout/internal/experiments"
	"scout/internal/fault"
	"scout/internal/pagestore"
)

func main() {
	var (
		list       = flag.Bool("list", false, "list available experiments and exit")
		exp        = flag.String("exp", "all", "experiment id to run, or 'all'")
		scale      = flag.Float64("scale", 1.0, "dataset scale factor (1.0 = DESIGN.md scale)")
		seqs       = flag.Int("seqs", 0, "override sequences per measurement (0 = paper count)")
		seed       = flag.Int64("seed", 7, "workload random seed")
		workers    = flag.Int("workers", 0, "sequence-level worker goroutines (0 = GOMAXPROCS, 1 = sequential)")
		sessions   = flag.Int("sessions", 0, "override the mu* experiments' session-count sweep with one count (0 = sweep 1..64)")
		policy     = flag.String("policy", "", "override the mu* arbiter policy: fair, demand, starved or none (empty = per-experiment default/ablation)")
		layout     = flag.String("layout", "", "physical page layout: insertion, hilbert or str (empty/insertion = the seed's order and per-page I/O; other layouts also enable batched elevator reads)")
		faults     = flag.String("faults", "", "fault-injection profile: off, light, moderate or heavy for rob1's session faults, shard:brownout, shard:outage or shard:flaky for ha1's shard faults (empty = each experiment sweeps its own profiles; no other experiment injects)")
		backend    = flag.String("backend", "", "page store backend: sim or file (empty/sim = pure virtual-clock cost model; file reads a durable checksummed page file and reports real read time alongside the simulated cost)")
		backendDir = flag.String("backenddir", "", "directory for the file backend's page files (empty = a fresh temp dir; only meaningful with -backend file)")
		checksum   = flag.String("checksum", "", "file-backend integrity mode: off, verify or repair (empty = repair; also pins dur1's mode sweep, like -faults pins rob1)")
		faultSeed  = flag.Int64("faultseed", 0, "seed for the deterministic fault schedules (0 = reuse -seed)")
		slo        = flag.Duration("slo", 0, "per-query response-time objective for rob1's goodput/violation columns (0 = the fault-free run's p95)")
		arrivals   = flag.String("arrivals", "", "load1's open-loop arrival process: poisson or bursty (empty = poisson)")
		rate       = flag.Float64("rate", 0, "pin load1's offered-load sweep to one multiplier of the calibrated capacity (0 = full 0.5x..8x sweep)")
		classes    = flag.String("classes", "", "load1's workload class mix: mixed or uniform (empty = mixed: model/scan/teleport)")
		patience   = flag.Duration("patience", 0, "load1's base abandonment patience (0 = 2x the derived SLO)")
		shards     = flag.Int("shards", 0, "pin shard1's and ha1's shard-count sweeps to one count (0 = full sweep; no other experiment shards)")
		replicas   = flag.Int("replicas", 0, "pin ha1's replication-mode sweep to one chain length (0 = full sweep: unreplicated, 2-way, 2-way hedged; no other experiment replicates)")
		hedge      = flag.Float64("hedge", 0, "ha1's hedged-prefetch threshold: re-issue a shard sub-batch to its replica when its estimate exceeds this multiple of the median (0 = the hedged mode's default 1.5; must be >= 1)")
		compare    = flag.Bool("compare", false, "also run single-core and report the wall-clock speedup")
		jsonOut    = flag.String("benchjson", "", "write wall-clock metrics to this JSON file")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the experiment runs to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile (after all runs) to this file")
		verbose    = flag.Bool("v", false, "print progress while running")
	)
	flag.Parse()

	// Unknown -policy/-layout/-faults values are usage errors, never silent
	// fallbacks: a typo must not quietly measure the default configuration.
	// Validation runs even for -list, so a typo is caught on the cheapest
	// possible invocation.
	if *policy != "" {
		if _, err := engine.ParsePolicy(*policy); err != nil {
			fmt.Fprintf(os.Stderr, "scoutbench: %v\nusage: -policy takes one of: %s\n",
				err, strings.Join(policyNames(), ", "))
			os.Exit(2)
		}
	}
	if *layout != "" {
		if _, err := pagestore.ParseLayout(*layout); err != nil {
			fmt.Fprintf(os.Stderr, "scoutbench: %v\nusage: -layout takes one of: %s\n",
				err, strings.Join(pagestore.LayoutNames(), ", "))
			os.Exit(2)
		}
	}
	if *faults != "" {
		if _, err := fault.ParseProfile(*faults, 0); err != nil {
			fmt.Fprintf(os.Stderr, "scoutbench: %v\nusage: -faults takes one of: %s\n",
				err, strings.Join(fault.AllProfiles(), ", "))
			os.Exit(2)
		}
	}
	if *slo < 0 {
		fmt.Fprintf(os.Stderr, "scoutbench: negative -slo %v\nusage: -slo takes a non-negative duration (e.g. 25ms; 0 = default)\n", *slo)
		os.Exit(2)
	}
	if *backend != "" {
		if _, err := experiments.ParseBackend(*backend); err != nil {
			fmt.Fprintf(os.Stderr, "scoutbench: %v\nusage: -backend takes one of: %s\n",
				err, strings.Join(experiments.BackendNames(), ", "))
			os.Exit(2)
		}
	}
	if *checksum != "" {
		if _, err := pagestore.ParseChecksumMode(*checksum); err != nil {
			fmt.Fprintf(os.Stderr, "scoutbench: %v\nusage: -checksum takes one of: %s\n",
				err, strings.Join(pagestore.ChecksumModeNames(), ", "))
			os.Exit(2)
		}
	}
	if *arrivals != "" {
		if _, err := engine.ParseArrivalProcess(*arrivals); err != nil {
			fmt.Fprintf(os.Stderr, "scoutbench: %v\nusage: -arrivals takes one of: %s\n",
				err, strings.Join(engine.ArrivalProcessNames(), ", "))
			os.Exit(2)
		}
	}
	if *rate < 0 {
		fmt.Fprintf(os.Stderr, "scoutbench: negative -rate %v\nusage: -rate takes a non-negative load multiplier (e.g. 2; 0 = full sweep)\n", *rate)
		os.Exit(2)
	}
	if *classes != "" {
		if _, err := experiments.ParseClassMix(*classes); err != nil {
			fmt.Fprintf(os.Stderr, "scoutbench: %v\nusage: -classes takes one of: %s\n",
				err, strings.Join(experiments.ClassMixNames(), ", "))
			os.Exit(2)
		}
	}
	if *patience < 0 {
		fmt.Fprintf(os.Stderr, "scoutbench: negative -patience %v\nusage: -patience takes a non-negative duration (e.g. 100ms; 0 = 2x the derived SLO)\n", *patience)
		os.Exit(2)
	}
	if _, err := experiments.ParseShardCount(*shards); err != nil {
		fmt.Fprintf(os.Stderr, "scoutbench: %v\nusage: -shards takes one of: %s (0 = full sweep)\n",
			err, strings.Join(shardCountNames(), ", "))
		os.Exit(2)
	}
	if _, err := experiments.ParseReplicaCount(*replicas); err != nil {
		fmt.Fprintf(os.Stderr, "scoutbench: %v\nusage: -replicas takes one of: %s (0 = full sweep)\n",
			err, strings.Join(replicaCountNames(), ", "))
		os.Exit(2)
	}
	if _, err := experiments.ParseHedge(*hedge); err != nil {
		fmt.Fprintf(os.Stderr, "scoutbench: %v\nusage: -hedge takes 0 (default threshold) or a multiplier >= 1 (e.g. 1.5)\n", err)
		os.Exit(2)
	}
	// The file backend needs somewhere writable before any experiment runs:
	// probe the directory up front so a read-only -backenddir is a clear
	// usage error, not a panic from deep inside dataset setup.
	if be, _ := experiments.ParseBackend(*backend); be == "file" && *backendDir != "" {
		if err := os.MkdirAll(*backendDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "scoutbench: -backenddir: %v\nusage: -backenddir must name a writable directory\n", err)
			os.Exit(2)
		}
		probe, err := os.CreateTemp(*backendDir, ".scout-probe-*")
		if err != nil {
			fmt.Fprintf(os.Stderr, "scoutbench: -backenddir %s is not writable: %v\nusage: -backenddir must name a writable directory\n", *backendDir, err)
			os.Exit(2)
		}
		probe.Close()
		os.Remove(probe.Name())
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-22s %-14s %s\n", e.ID, e.Figure, e.Desc)
		}
		return
	}
	opt := experiments.Options{Scale: *scale, Sequences: *seqs, Seed: *seed, Workers: *workers,
		Sessions: *sessions, Policy: *policy, Layout: *layout,
		Faults: *faults, FaultSeed: *faultSeed, SLO: *slo,
		Backend: *backend, BackendDir: *backendDir, Checksum: *checksum,
		Arrivals: *arrivals, Rate: *rate, Classes: *classes, Patience: *patience,
		Shards: *shards, Replicas: *replicas, Hedge: *hedge}
	if *verbose {
		opt.Progress = func(msg string) { fmt.Fprintln(os.Stderr, "  ...", msg) }
	}
	env := experiments.NewEnv(opt)

	var toRun []experiments.Experiment
	if *exp == "all" {
		toRun = experiments.All()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			e, err := experiments.ByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				fmt.Fprintln(os.Stderr, "use -list to see available experiments")
				os.Exit(2)
			}
			toRun = append(toRun, e)
		}
	}

	// The sequential comparison environment shares nothing with the parallel
	// one except the options, so dataset build time is charged to both runs
	// equally (datasets are memoized per environment, not globally).
	var seqEnv *experiments.Env
	if *compare {
		seqOpt := opt
		seqOpt.Workers = 1
		seqEnv = experiments.NewEnv(seqOpt)
	}

	// Build the shared datasets before starting any timer, so the recorded
	// wall-clocks measure experiment execution, not one-time dataset
	// generation (which would otherwise land inside the first experiment's
	// measurement and distort the perf trajectory in -benchjson). Each
	// experiment declares its datasets via Warm; builds are memoized per
	// environment, so overlapping declarations cost nothing. fig13b/fig14
	// use parameterized density-sweep datasets that must build inside the
	// run (Warm == nil).
	for _, e := range toRun {
		if e.Warm == nil {
			continue
		}
		e.Warm(env)
		if seqEnv != nil {
			e.Warm(seqEnv)
		}
	}

	// Profiling starts after dataset warm-up so profiles capture hot-path
	// experiment execution, not one-time generation.
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	// -sessions/-policy only affect the mu*/rob* experiments, and
	// -faults/-faultseed/-slo only rob*; stamping them into the JSON for a
	// run without those experiments would make benchdiff void comparisons
	// between configurations that are actually identical.
	hasMu, hasRob, hasLoad, hasShard, hasHA := false, false, false, false, false
	for _, e := range toRun {
		if strings.HasPrefix(e.ID, "mu") || strings.HasPrefix(e.ID, "rob") {
			hasMu = true
		}
		if strings.HasPrefix(e.ID, "rob") {
			hasRob = true
		}
		if strings.HasPrefix(e.ID, "load") {
			hasLoad = true
		}
		if strings.HasPrefix(e.ID, "shard") {
			hasShard = true
		}
		if strings.HasPrefix(e.ID, "ha") {
			hasHA = true
		}
	}
	out := benchfmt.File{
		Scale:      *scale,
		Sequences:  *seqs,
		Seed:       *seed,
		Workers:    *workers,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	if hasMu {
		out.Sessions = *sessions
		out.SessionPolicy = *policy
	}
	// "off" IS the default fault configuration, like "insertion" for
	// -layout below: normalize it so spelling the default never voids a
	// benchdiff comparison. ha1 shares the fault/SLO knobs with rob1 (its
	// profiles are the shard:* ones).
	if hasRob || hasHA {
		if *faults != "off" {
			out.Faults = *faults
		}
		out.FaultSeed = *faultSeed
		out.SLOMS = float64(slo.Microseconds()) / 1000
	}
	// -arrivals/-rate/-classes/-patience only shape load1's offered-load
	// points; "poisson" and "mixed" ARE the defaults, so normalize them like
	// "off"/"insertion" above — spelling the default never voids a benchdiff
	// comparison.
	if hasLoad {
		if *arrivals != "poisson" {
			out.Arrivals = *arrivals
		}
		out.ArrivalRate = *rate
		if *classes != "mixed" {
			out.Classes = *classes
		}
		out.PatienceMS = float64(patience.Microseconds()) / 1000
	}
	// -shards pins shard1's and ha1's shard-count sweeps; 0 IS the default
	// (full sweep), and omitempty drops it, so only a real pin voids a
	// benchdiff comparison. Same for ha1's -replicas/-hedge.
	if hasShard || hasHA {
		out.Shards = *shards
	}
	if hasHA {
		out.Replicas = *replicas
		out.Hedge = *hedge
	}
	// "insertion" IS the default configuration: normalize it to the empty
	// string so benchdiff never voids a comparison between two identical
	// setups spelled differently.
	if *layout != "insertion" {
		out.Layout = *layout
	}
	// Same normalization for the backend ("sim" is the default) and the
	// integrity mode ("repair" is the default).
	if *backend != "sim" {
		out.Backend = *backend
	}
	if *checksum != "repair" {
		out.Checksum = *checksum
	}
	// total accumulates only the (parallel) experiment runs, excluding the
	// -compare sequential re-runs, so the JSON trajectory metric tracks the
	// harness's own wall-clock across commits.
	var total time.Duration
	for _, e := range toRun {
		start := time.Now()
		res := e.Run(env)
		wall := time.Since(start)
		total += wall
		fmt.Println(res.String())

		rec := benchfmt.Record{ID: e.ID, WallMS: float64(wall.Microseconds()) / 1000, Seeks: res.Seeks, P999MS: res.P999MS}
		if *compare {
			seqStart := time.Now()
			seqRes := e.Run(seqEnv)
			seqWall := time.Since(seqStart)
			rec.SequentialWallMS = float64(seqWall.Microseconds()) / 1000
			if rec.WallMS > 0 {
				rec.Speedup = rec.SequentialWallMS / rec.WallMS
			}
			if seqRes.String() != res.String() {
				fmt.Fprintf(os.Stderr, "WARNING: %s: parallel output differs from sequential output\n", e.ID)
			}
			fmt.Printf("(%s completed in %s; sequential %s, speedup %.2fx)\n\n",
				e.ID, wall.Round(time.Millisecond), seqWall.Round(time.Millisecond), rec.Speedup)
		} else {
			fmt.Printf("(%s completed in %s)\n\n", e.ID, wall.Round(time.Millisecond))
		}
		out.Experiments = append(out.Experiments, rec)
	}
	out.TotalWallMS = float64(total.Microseconds()) / 1000
	fmt.Printf("total wall-clock: %s (%d experiments, workers=%d)\n",
		total.Round(time.Millisecond), len(toRun), effectiveWorkers(*workers))

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "memprofile:", err)
			os.Exit(1)
		}
		runtime.GC() // settle allocations so the heap profile reflects live data
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "memprofile:", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("wrote %s\n", *memProfile)
	}

	if *jsonOut != "" {
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}
}

func effectiveWorkers(w int) int {
	if w <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

func policyNames() []string {
	var names []string
	for _, p := range engine.Policies() {
		names = append(names, p.String())
	}
	return names
}

func shardCountNames() []string {
	var names []string
	for _, n := range experiments.ShardCounts() {
		names = append(names, fmt.Sprintf("%d", n))
	}
	return names
}

func replicaCountNames() []string {
	var names []string
	for _, n := range experiments.ReplicaCounts() {
		names = append(names, fmt.Sprintf("%d", n))
	}
	return names
}
