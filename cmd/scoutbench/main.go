// Command scoutbench regenerates the paper's tables and figures. Each
// experiment prints the same rows or series the paper reports; DESIGN.md §4
// maps experiment IDs to figures and EXPERIMENTS.md records paper-vs-
// measured values.
//
// Usage:
//
//	scoutbench -list
//	scoutbench -exp fig11a            # one experiment at full scale
//	scoutbench -exp all -scale 0.25   # everything, quarter-scale datasets
//	scoutbench -exp fig13d -seqs 10   # fewer sequences for a quick look
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"scout/internal/experiments"
)

func main() {
	var (
		list    = flag.Bool("list", false, "list available experiments and exit")
		exp     = flag.String("exp", "all", "experiment id to run, or 'all'")
		scale   = flag.Float64("scale", 1.0, "dataset scale factor (1.0 = DESIGN.md scale)")
		seqs    = flag.Int("seqs", 0, "override sequences per measurement (0 = paper count)")
		seed    = flag.Int64("seed", 7, "workload random seed")
		verbose = flag.Bool("v", false, "print progress while running")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-22s %-14s %s\n", e.ID, e.Figure, e.Desc)
		}
		return
	}

	opt := experiments.Options{Scale: *scale, Sequences: *seqs, Seed: *seed}
	if *verbose {
		opt.Progress = func(msg string) { fmt.Fprintln(os.Stderr, "  ...", msg) }
	}
	env := experiments.NewEnv(opt)

	var toRun []experiments.Experiment
	if *exp == "all" {
		toRun = experiments.All()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			e, err := experiments.ByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				fmt.Fprintln(os.Stderr, "use -list to see available experiments")
				os.Exit(2)
			}
			toRun = append(toRun, e)
		}
	}

	for _, e := range toRun {
		start := time.Now()
		res := e.Run(env)
		fmt.Println(res.String())
		fmt.Printf("(%s completed in %s)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
